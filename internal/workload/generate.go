package workload

import (
	"fmt"
	"math/rand"

	"tracecache/internal/isa"
	"tracecache/internal/program"
)

// Memory layout of generated programs.
const (
	streamBase  uint64 = 0x0100000 // branch-condition stream array
	counterBase uint64 = 0x0800000 // patterned-branch counters
	workBase    uint64 = 0x1000000 // load/store working set
	tableBase   uint64 = 0x1800000 // switch jump tables
)

// Register conventions of generated code.
const (
	rScratchLo         = 1 // r1..r10: filler scratch
	rScratchHi         = 10
	rLoop0     isa.Reg = 11 // loop counters by nesting depth (r11..r13)
	rWorkAddr  isa.Reg = 15
	rStreamBas isa.Reg = 16
	rStreamOff isa.Reg = 17
	rWorkBase  isa.Reg = 18
	rVal       isa.Reg = 20 // last stream value
	rPattern   isa.Reg = 24
	rAddr      isa.Reg = 25
	rSwitch    isa.Reg = 27
	rOuter     isa.Reg = 28
	rTmp       isa.Reg = 29 // extracted branch-condition field
	rConst0    isa.Reg = 14 // branch-probability threshold constants
	rConst1    isa.Reg = 21
	rConst2    isa.Reg = 22
	rConst3    isa.Reg = 23
	rConst4    isa.Reg = 30
	rConst5    isa.Reg = 31
	rConst6    isa.Reg = 19
	rConst7    isa.Reg = 26
)

// Stream values carry streamValueBits of entropy; branches consume
// branchFieldBits at a time, so one load feeds several branch decisions
// and dynamic fetch blocks stay small (the paper's machines see roughly
// five-instruction blocks).
const (
	streamValueBits  = 48
	branchFieldBits  = 8
	branchFieldRange = 1 << branchFieldBits
)

// Branch-probability thresholds preloaded into constant registers by main,
// so a stream branch costs three instructions (field extract, shift,
// compare-and-branch). With both branch senses, the reachable dominant
// probabilities are {1.6, 9.4, 25, 50, 75, 90.6, 98.4}%.
var threshConsts = []struct {
	reg    isa.Reg
	thresh int64
}{
	{rConst0, 4},   // 1.6%
	{rConst1, 24},  // 9.4%
	{rConst2, 64},  // 25%
	{rConst3, 128}, // 50%
	{rConst4, 232}, // 90.6%
	{rConst5, 240}, // 93.75%
	{rConst6, 248}, // 96.9%
	{rConst7, 252}, // 98.4%
}

type gen struct {
	p        Profile
	b        *program.Builder
	rnd      *rand.Rand
	labelSeq int
	nextCtr  uint64
	nextTbl  uint64
	// pool is the function pool currently being emitted (always 0 unless
	// CodeScale > 1); calls resolve within the emitting pool.
	pool int
	// bitsLeft tracks how many unconsumed random bits remain in rVal at
	// the current emission point; any construct that clobbers rVal or
	// breaks straight-line determinism resets it.
	bitsLeft int
}

// Generate builds the synthetic program for the profile.
func (p Profile) Generate() (*program.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		p:       p,
		b:       program.NewBuilder(p.Name),
		rnd:     rand.New(rand.NewSource(p.Seed)),
		nextCtr: counterBase,
		nextTbl: tableBase,
	}
	// Emit functions leaf-first: f(i) may call f(j) for j < i. With
	// CodeScale > 1 the whole call DAG is replicated per pool; pool 0
	// draws the same random sequence as an unscaled build, so its code is
	// identical and the extra pools only append.
	for pool := 0; pool < g.pools(); pool++ {
		g.pool = pool
		for i := 0; i < p.Funcs; i++ {
			g.emitFunc(i)
		}
	}
	g.emitMain()
	g.emitStreamData()
	return g.b.Build()
}

// MustGenerate is Generate, panicking on error; profiles returned by
// Profiles are always valid.
func (p Profile) MustGenerate() *program.Program {
	prog, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return prog
}

func (g *gen) label(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, g.labelSeq)
}

func (g *gen) rangeInt(r [2]int) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + g.rnd.Intn(r[1]-r[0]+1)
}

func (g *gen) scratch() isa.Reg {
	return isa.Reg(rScratchLo + g.rnd.Intn(rScratchHi-rScratchLo+1))
}

// pools is the number of function pools to emit (CodeScale, floored at 1).
func (g *gen) pools() int {
	if g.p.CodeScale > 1 {
		return g.p.CodeScale
	}
	return 1
}

// fname names function idx of a pool. Pool 0 keeps the unscaled "f%d"
// names so an unscaled build is byte-identical.
func (g *gen) fname(pool, idx int) string {
	if pool == 0 {
		return fmt.Sprintf("f%d", idx)
	}
	return fmt.Sprintf("p%df%d", pool, idx)
}

func (g *gen) emitMain() {
	b := g.b
	b.Here("main")
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rStreamBas, Imm: int64(streamBase)})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rStreamOff, Imm: 0})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rWorkBase, Imm: int64(workBase)})
	b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rOuter, Imm: g.p.OuterTrips})
	for _, tc := range threshConsts {
		b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: tc.reg, Imm: tc.thresh})
	}
	b.Here("outer")
	top := 4
	if top > g.p.Funcs {
		top = g.p.Funcs
	}
	if pools := g.pools(); pools > 1 {
		// Paper-scale phase dispatch: the outer trip count selects a
		// function pool through a jump table, so successive trips rotate
		// between disjoint static code regions and a long run shows
		// gcc/go-class phase behaviour instead of one hot loop nest.
		tbl := g.nextTbl
		g.nextTbl += uint64(pools) * 8
		b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rSwitch, Rs1: rOuter, Imm: int64(pools - 1)})
		b.Emit(isa.Inst{Op: isa.OpMulI, Rd: rSwitch, Rs1: rSwitch, Imm: 8})
		b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rAddr, Imm: int64(tbl)})
		b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rAddr, Rs1: rAddr, Rs2: rSwitch})
		b.Emit(isa.Inst{Op: isa.OpLoad, Rd: rSwitch, Rs1: rAddr})
		b.Emit(isa.Inst{Op: isa.OpJmpInd, Rs1: rSwitch})
		join := g.label("phasejoin")
		for pp := 0; pp < pools; pp++ {
			b.Word(tbl+uint64(pp)*8, int64(b.PC()))
			for i := 0; i < top; i++ {
				b.EmitTo(isa.Inst{Op: isa.OpCall}, g.fname(pp, g.p.Funcs-1-i))
			}
			if pp != pools-1 {
				b.EmitTo(isa.Inst{Op: isa.OpJmp}, join)
			}
		}
		b.Here(join)
	} else {
		for i := 0; i < top; i++ {
			b.EmitTo(isa.Inst{Op: isa.OpCall}, fmt.Sprintf("f%d", g.p.Funcs-1-i))
		}
	}
	b.Emit(isa.Inst{Op: isa.OpAddI, Rd: rOuter, Rs1: rOuter, Imm: -1})
	b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: rOuter, Rs2: 0}, "outer")
	b.Emit(isa.Inst{Op: isa.OpHalt})
	b.Entry("main")
}

func (g *gen) emitFunc(idx int) {
	g.bitsLeft = 0 // callers leave rVal in an unknown state
	g.b.Here(g.fname(g.pool, idx))
	n := g.rangeInt(g.p.StepsPerFunc)
	for i := 0; i < n; i++ {
		g.emitStep(idx, 0)
	}
	g.b.Emit(isa.Inst{Op: isa.OpRet})
}

// emitStep emits one body element: a trap, a switch, a call, a loop, or a
// conditional construct over filler code.
func (g *gen) emitStep(fidx, depth int) {
	p := g.p
	r := g.rnd.Float64()
	switch {
	case r < p.TrapProb:
		g.b.Emit(isa.Inst{Op: isa.OpTrap})
	case r < p.TrapProb+p.SwitchProb:
		g.emitSwitch()
	case r < p.TrapProb+p.SwitchProb+p.CallProb && fidx > 0:
		g.b.EmitTo(isa.Inst{Op: isa.OpCall}, g.fname(g.pool, g.rnd.Intn(fidx)))
		g.bitsLeft = 0 // the callee consumed stream bits
	case r < p.TrapProb+p.SwitchProb+p.CallProb+p.LoopProb && depth < 2:
		g.emitLoop(fidx, depth)
	default:
		if g.rnd.Float64() < 0.5 {
			g.emitIfSkip()
		} else {
			g.emitDiamond()
		}
	}
}

// emitLoop emits a counted loop whose body is one or two nested steps.
func (g *gen) emitLoop(fidx, depth int) {
	trip := g.rangeInt(g.p.TripCount)
	// Inner loops iterate less, so nests do not monopolise the dynamic
	// stream.
	for d := 0; d < depth; d++ {
		trip = (trip + 3) / 4
	}
	if trip < 2 {
		trip = 2
	}
	ctr := rLoop0 + isa.Reg(depth)
	head := g.label("loop")
	g.b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: ctr, Imm: int64(trip)})
	g.bitsLeft = 0 // each iteration re-enters with rVal in a different state
	g.b.Here(head)
	body := 1 + g.rnd.Intn(2)
	for i := 0; i < body; i++ {
		g.emitStep(fidx, depth+1)
	}
	g.b.Emit(isa.Inst{Op: isa.OpAddI, Rd: ctr, Rs1: ctr, Imm: -1})
	g.b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondGT, Rs1: ctr, Rs2: 0}, head)
	g.bitsLeft = 0
}

// emitIfSkip emits a conditional branch over a filler block.
func (g *gen) emitIfSkip() {
	skip := g.label("skip")
	g.emitCondBranch(skip)
	g.emitFiller(g.rangeInt(g.p.FillerSize))
	g.b.Here(skip)
}

// emitDiamond emits an if/else with filler in both arms.
func (g *gen) emitDiamond() {
	els, join := g.label("else"), g.label("join")
	g.emitCondBranch(els)
	g.emitFiller(g.rangeInt(g.p.FillerSize))
	g.b.EmitTo(isa.Inst{Op: isa.OpJmp}, join)
	g.b.Here(els)
	g.emitFiller(g.rangeInt(g.p.FillerSize))
	g.b.Here(join)
}

// emitSwitch emits an indirect jump through a jump table, selecting a case
// from the stream value.
func (g *gen) emitSwitch() {
	ways := g.p.SwitchWays
	tbl := g.nextTbl
	g.nextTbl += uint64(ways) * 8
	g.emitStreamLoad()
	g.b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rSwitch, Rs1: rVal, Imm: int64(ways - 1)})
	g.b.Emit(isa.Inst{Op: isa.OpMulI, Rd: rSwitch, Rs1: rSwitch, Imm: 8})
	g.b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rAddr, Imm: int64(tbl)})
	g.b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rAddr, Rs1: rAddr, Rs2: rSwitch})
	g.b.Emit(isa.Inst{Op: isa.OpLoad, Rd: rSwitch, Rs1: rAddr})
	g.b.Emit(isa.Inst{Op: isa.OpJmpInd, Rs1: rSwitch})
	g.bitsLeft = 0 // rVal consumed by the case selector
	join := g.label("swjoin")
	for w := 0; w < ways; w++ {
		g.b.Word(tbl+uint64(w)*8, int64(g.b.PC()))
		g.emitFiller(2 + g.rnd.Intn(4))
		if w != ways-1 {
			g.b.EmitTo(isa.Inst{Op: isa.OpJmp}, join)
		}
	}
	g.b.Here(join)
}

// branch behavioural classes.
type branchClass int

const (
	clsBiased branchClass = iota
	clsSemiBiased
	clsPatterned
	clsRandom
)

func (g *gen) pickClass() branchClass {
	r := g.rnd.Float64()
	m := g.p.Mix
	switch {
	case r < m.Biased:
		return clsBiased
	case r < m.Biased+m.SemiBiased:
		return clsSemiBiased
	case r < m.Biased+m.SemiBiased+m.Patterned:
		return clsPatterned
	default:
		return clsRandom
	}
}

// emitCondBranch emits the condition computation and a conditional branch
// to target, drawn from the profile's behavioural mix.
func (g *gen) emitCondBranch(target string) {
	switch g.pickClass() {
	case clsPatterned:
		g.emitPatternedBranch(target)
	case clsBiased:
		if g.rnd.Float64() < 0.55 {
			// A pure one-way branch (never-failing check): the prime
			// promotion candidate. One instruction.
			cond := isa.CondEQ // always taken: r0 == r0
			if g.rnd.Float64() < 0.5 {
				cond = isa.CondNE // never taken
			}
			g.b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: cond}, target)
			return
		}
		pt := g.p.BiasedProb
		if g.rnd.Float64() < 0.5 {
			pt = 1 - pt // dominant direction is not-taken
		}
		g.emitStreamBranch(target, pt)
	case clsSemiBiased:
		pt := g.p.SemiBiasedProb
		if pt == 0 {
			pt = 0.92
		}
		if g.rnd.Float64() < 0.5 {
			pt = 1 - pt
		}
		g.emitStreamBranch(target, pt)
	default:
		lo, hi := g.p.RandomProb[0], g.p.RandomProb[1]
		g.emitStreamBranch(target, lo+g.rnd.Float64()*(hi-lo))
	}
}

// emitStreamLoad advances the stream pointer and loads the next value into
// rVal (uniform in [0, streamValueRange)).
func (g *gen) emitStreamLoad() {
	mask := int64(g.p.StreamWords-1) * 8
	g.b.Emit(isa.Inst{Op: isa.OpAddI, Rd: rStreamOff, Rs1: rStreamOff, Imm: 8})
	g.b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rStreamOff, Rs1: rStreamOff, Imm: mask})
	g.b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rAddr, Rs1: rStreamBas, Rs2: rStreamOff})
	g.b.Emit(isa.Inst{Op: isa.OpLoad, Rd: rVal, Rs1: rAddr})
}

// emitStreamBranch emits a branch taken with probability (nearest to) pt,
// conditioned on the next branchFieldBits-wide slice of the random stream.
// One stream load feeds several consecutive branches and the threshold
// comes from a preloaded constant register, so most branches cost three
// instructions and dynamic fetch blocks stay small (the paper's machines
// see roughly five-instruction blocks).
func (g *gen) emitStreamBranch(target string, pt float64) {
	reg, cond := nearestThreshold(pt)
	if g.bitsLeft < branchFieldBits {
		g.emitStreamLoad()
		g.bitsLeft = streamValueBits
	}
	g.b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rTmp, Rs1: rVal, Imm: branchFieldRange - 1})
	g.b.Emit(isa.Inst{Op: isa.OpShrI, Rd: rVal, Rs1: rVal, Imm: branchFieldBits})
	g.bitsLeft -= branchFieldBits
	g.b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: cond, Rs1: rTmp, Rs2: reg}, target)
}

// nearestThreshold picks the constant register and branch sense whose
// taken probability is closest to pt.
func nearestThreshold(pt float64) (isa.Reg, isa.Cond) {
	bestReg, bestCond := threshConsts[0].reg, isa.CondLT
	bestErr := 2.0
	for _, tc := range threshConsts {
		p := float64(tc.thresh) / branchFieldRange
		if e := abs(p - pt); e < bestErr {
			bestErr, bestReg, bestCond = e, tc.reg, isa.CondLT
		}
		if e := abs((1 - p) - pt); e < bestErr {
			bestErr, bestReg, bestCond = e, tc.reg, isa.CondGE
		}
	}
	return bestReg, bestCond
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// emitPatternedBranch emits a branch taken once every `period` executions,
// driven by a per-site counter in memory.
func (g *gen) emitPatternedBranch(target string) {
	period := g.p.PatternPeriods[g.rnd.Intn(len(g.p.PatternPeriods))]
	addr := g.nextCtr
	g.nextCtr += 8
	g.b.Word(addr, int64(g.rnd.Intn(period))) // random phase
	g.b.Emit(isa.Inst{Op: isa.OpLoadI, Rd: rAddr, Imm: int64(addr)})
	g.b.Emit(isa.Inst{Op: isa.OpLoad, Rd: rPattern, Rs1: rAddr})
	g.b.Emit(isa.Inst{Op: isa.OpAddI, Rd: rPattern, Rs1: rPattern, Imm: 1})
	g.b.Emit(isa.Inst{Op: isa.OpStore, Rs1: rAddr, Rs2: rPattern})
	g.b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rTmp, Rs1: rPattern, Imm: int64(period - 1)})
	g.b.EmitTo(isa.Inst{Op: isa.OpBr, Cond: isa.CondEQ, Rs1: rTmp, Rs2: 0}, target)
}

// emitFiller emits n instructions of straight-line code: ALU work on the
// scratch registers with occasional loads and stores to the working set.
func (g *gen) emitFiller(n int) {
	for n > 0 {
		r := g.rnd.Float64()
		switch {
		case r < 0.14 && n >= 3:
			g.emitWorkAddr()
			g.b.Emit(isa.Inst{Op: isa.OpLoad, Rd: g.scratch(), Rs1: rWorkAddr})
			n -= 3
		case r < 0.24 && n >= 3:
			g.emitWorkAddr()
			g.b.Emit(isa.Inst{Op: isa.OpStore, Rs1: rWorkAddr, Rs2: g.scratch()})
			n -= 3
		default:
			g.b.Emit(g.fillerALU())
			n--
		}
	}
}

// emitWorkAddr computes a working-set address from a scratch value.
func (g *gen) emitWorkAddr() {
	mask := int64(g.p.WorkWords-1) * 8
	g.b.Emit(isa.Inst{Op: isa.OpAndI, Rd: rWorkAddr, Rs1: g.scratch(), Imm: mask})
	g.b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rWorkAddr, Rs1: rWorkAddr, Rs2: rWorkBase})
}

func (g *gen) fillerALU() isa.Inst {
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpOr, isa.OpAdd, isa.OpSub}
	r := g.rnd.Float64()
	op := ops[g.rnd.Intn(len(ops))]
	if r < 0.08 {
		op = isa.OpMul
	} else if r < 0.09 {
		op = isa.OpDiv
	}
	return isa.Inst{Op: op, Rd: g.scratch(), Rs1: g.scratch(), Rs2: g.scratch()}
}

// emitStreamData fills the branch-condition stream with uniform values.
func (g *gen) emitStreamData() {
	for i := 0; i < g.p.StreamWords; i++ {
		g.b.Word(streamBase+uint64(i)*8, g.rnd.Int63n(1<<streamValueBits))
	}
}
