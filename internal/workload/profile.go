// Package workload generates the synthetic benchmark programs that stand
// in for the SPECint95 and UNIX applications of the paper's Table 1. Each
// profile controls the dynamic-stream characteristics that drive the
// paper's results: basic-block size, the fraction of strongly biased
// branches, loop structure, call/return/indirect mix, code footprint
// (instruction cache pressure) and data footprint (memory-scheduler
// pressure). The programs compute nothing meaningful; their dynamic
// instruction streams are the product.
package workload

import "fmt"

// BranchMix gives the fraction of conditional branch sites in each
// behavioural class. Biased branches go one way with very high probability
// (~98%: promotion candidates); semi-biased branches lean strongly one way
// (~94%) but flip often enough that the bias table rarely promotes them;
// patterned branches follow a repeating period (gnuplot's
// promote-then-fault behaviour uses long periods); the remainder are
// data-dependent with mid-range probabilities — the hard branches that set
// the misprediction floor.
type BranchMix struct {
	Biased     float64
	SemiBiased float64
	Patterned  float64
}

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name string
	Seed int64

	// PaperInsts is the instruction count the paper simulated (Table 1),
	// recorded for documentation; runs use a configurable budget.
	PaperInsts string
	// PaperInput is the input set listed in Table 1, if any.
	PaperInput string

	// Code shape.
	Funcs        int    // functions in the call DAG
	StepsPerFunc [2]int // body steps per function [min,max]
	FillerSize   [2]int // straight-line filler instructions per step

	// Branch behaviour. Probabilities are mapped to the nearest value the
	// generated code can express (see generate.go).
	Mix            BranchMix
	BiasedProb     float64 // dominant-direction probability, biased class
	SemiBiasedProb float64 // dominant-direction probability, semi-biased class
	RandomProb     [2]float64
	PatternPeriods []int // power-of-two periods for patterned branches

	// Loops.
	LoopProb  float64
	TripCount [2]int

	// Calls, indirect jumps, traps (per step probabilities).
	CallProb   float64
	SwitchProb float64
	SwitchWays int // power of two
	TrapProb   float64

	// Memory behaviour.
	StreamWords int // power of two; the branch-condition stream
	WorkWords   int // power of two; load/store working set

	// OuterTrips bounds the outer loop so programs halt; simulations are
	// normally budget-limited long before this.
	OuterTrips int64

	// CodeScale grows the static code footprint toward the paper-scale
	// gcc/go class: when >= 2 (a power of two, at most 64) the generator
	// emits CodeScale disjoint pools of Funcs functions and the outer
	// loop rotates through the pools on successive trips, so a long
	// sampled run walks between static code regions on a phase-like
	// timescale instead of re-fetching one small loop nest. 0 or 1
	// leaves generation byte-identical to the unscaled program.
	CodeScale int
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if p.Funcs < 1 {
		return fmt.Errorf("workload %s: need at least one function", p.Name)
	}
	for _, pow2 := range []struct {
		name string
		v    int
	}{{"StreamWords", p.StreamWords}, {"WorkWords", p.WorkWords}, {"SwitchWays", p.SwitchWays}} {
		if pow2.v <= 0 || pow2.v&(pow2.v-1) != 0 {
			return fmt.Errorf("workload %s: %s = %d not a positive power of two", p.Name, pow2.name, pow2.v)
		}
	}
	if p.Mix.Biased+p.Mix.SemiBiased+p.Mix.Patterned > 1 {
		return fmt.Errorf("workload %s: branch mix exceeds 1", p.Name)
	}
	if p.StepsPerFunc[0] < 1 || p.StepsPerFunc[1] < p.StepsPerFunc[0] {
		return fmt.Errorf("workload %s: bad StepsPerFunc", p.Name)
	}
	if p.FillerSize[0] < 0 || p.FillerSize[1] < p.FillerSize[0] {
		return fmt.Errorf("workload %s: bad FillerSize", p.Name)
	}
	if p.TripCount[0] < 1 || p.TripCount[1] < p.TripCount[0] {
		return fmt.Errorf("workload %s: bad TripCount", p.Name)
	}
	if len(p.PatternPeriods) == 0 {
		return fmt.Errorf("workload %s: no pattern periods", p.Name)
	}
	for _, k := range p.PatternPeriods {
		if k <= 1 || k&(k-1) != 0 {
			return fmt.Errorf("workload %s: pattern period %d not a power of two > 1", p.Name, k)
		}
	}
	if s := p.CodeScale; s > 1 && (s&(s-1) != 0 || s > 64) {
		return fmt.Errorf("workload %s: CodeScale %d not a power of two <= 64", p.Name, s)
	}
	if p.CodeScale < 0 {
		return fmt.Errorf("workload %s: negative CodeScale", p.Name)
	}
	return nil
}

// Scaled returns a copy of the profile with CodeScale set, named
// "<name>x<scale>" so run metadata and memo keys cannot conflate it with
// the unscaled benchmark. Scale values 0 and 1 return the profile
// unchanged.
func (p Profile) Scaled(scale int) Profile {
	if scale <= 1 {
		return p
	}
	p.CodeScale = scale
	p.Name = fmt.Sprintf("%sx%d", p.Name, scale)
	return p
}

func base(name string, seed int64) Profile {
	return Profile{
		Name:           name,
		Seed:           seed,
		Funcs:          24,
		StepsPerFunc:   [2]int{6, 12},
		FillerSize:     [2]int{1, 4},
		Mix:            BranchMix{Biased: 0.72, SemiBiased: 0.21, Patterned: 0.02},
		BiasedProb:     0.984,
		SemiBiasedProb: 0.938,
		RandomProb:     [2]float64{0.65, 0.85},
		PatternPeriods: []int{16, 32},
		LoopProb:       0.25,
		TripCount:      [2]int{12, 48},
		CallProb:       0.12,
		SwitchProb:     0.02,
		SwitchWays:     4,
		TrapProb:       0.0005,
		StreamWords:    1 << 13,
		WorkWords:      1 << 12,
		OuterTrips:     1 << 40,
	}
}

// Profiles returns the fifteen benchmark profiles of Table 1, in the
// paper's order.
func Profiles() []Profile {
	var out []Profile

	p := base("compress", 101)
	p.PaperInsts, p.PaperInput = "95M", "modified test.in (30000 elements)"
	p.Funcs = 10
	p.StepsPerFunc = [2]int{5, 9}
	p.FillerSize = [2]int{1, 5}
	p.Mix = BranchMix{Biased: 0.66, SemiBiased: 0.26, Patterned: 0.03}
	p.LoopProb = 0.40
	p.TripCount = [2]int{16, 96}
	p.WorkWords = 1 << 17 // 1MB working set: data cache misses matter
	p.CallProb = 0.06
	out = append(out, p)

	p = base("gcc", 102)
	p.PaperInsts, p.PaperInput = "157M", "jump.i"
	p.Funcs = 110
	p.StepsPerFunc = [2]int{8, 16}
	p.FillerSize = [2]int{0, 2} // small blocks: branchy compiler code
	p.Mix = BranchMix{Biased: 0.68, SemiBiased: 0.27, Patterned: 0.02}
	p.RandomProb = [2]float64{0.6, 0.8}
	p.LoopProb = 0.18
	p.TripCount = [2]int{8, 24}
	p.CallProb = 0.16
	p.SwitchProb = 0.04
	p.SwitchWays = 8
	out = append(out, p)

	p = base("go", 103)
	p.PaperInsts, p.PaperInput = "151M", "2stone9.in (abbreviated)"
	p.Funcs = 100
	p.StepsPerFunc = [2]int{8, 14}
	p.FillerSize = [2]int{0, 2}
	p.Mix = BranchMix{Biased: 0.52, SemiBiased: 0.30, Patterned: 0.03} // hardest branches
	p.RandomProb = [2]float64{0.5, 0.72}
	p.LoopProb = 0.20
	p.TripCount = [2]int{6, 16}
	p.CallProb = 0.14
	out = append(out, p)

	p = base("ijpeg", 104)
	p.PaperInsts, p.PaperInput = "500M", "penguin.ppm"
	p.Funcs = 18
	p.StepsPerFunc = [2]int{5, 10}
	p.FillerSize = [2]int{5, 12} // long straight-line DSP-style blocks
	p.Mix = BranchMix{Biased: 0.72, SemiBiased: 0.22, Patterned: 0.02}
	p.LoopProb = 0.45
	p.TripCount = [2]int{8, 64}
	p.CallProb = 0.08
	p.WorkWords = 1 << 15
	out = append(out, p)

	p = base("li", 105)
	p.PaperInsts, p.PaperInput = "500M", "train.lsp"
	p.Funcs = 30
	p.StepsPerFunc = [2]int{3, 7} // small interpreter functions
	p.FillerSize = [2]int{0, 2}
	p.Mix = BranchMix{Biased: 0.70, SemiBiased: 0.24, Patterned: 0.02}
	p.CallProb = 0.30 // call/return heavy
	p.SwitchProb = 0.05
	p.LoopProb = 0.12
	p.TripCount = [2]int{8, 24}
	out = append(out, p)

	p = base("m88ksim", 106)
	p.PaperInsts, p.PaperInput = "493M", "dhry.test"
	p.Funcs = 22
	p.StepsPerFunc = [2]int{6, 11}
	p.FillerSize = [2]int{2, 6}
	p.Mix = BranchMix{Biased: 0.72, SemiBiased: 0.22, Patterned: 0.02}
	p.LoopProb = 0.35
	p.TripCount = [2]int{8, 48}
	p.SwitchProb = 0.04
	p.SwitchWays = 8
	out = append(out, p)

	p = base("perl", 107)
	p.PaperInsts, p.PaperInput = "41M", "scrabbl.pl"
	p.Funcs = 44
	p.StepsPerFunc = [2]int{6, 12}
	p.FillerSize = [2]int{1, 4}
	p.Mix = BranchMix{Biased: 0.66, SemiBiased: 0.28, Patterned: 0.02}
	p.CallProb = 0.22
	p.SwitchProb = 0.06 // opcode dispatch
	p.SwitchWays = 8
	p.LoopProb = 0.15
	out = append(out, p)

	p = base("vortex", 108)
	p.PaperInsts, p.PaperInput = "214M", "vortex.in (abbreviated)"
	p.Funcs = 96
	p.StepsPerFunc = [2]int{7, 13}
	p.FillerSize = [2]int{2, 6}
	p.Mix = BranchMix{Biased: 0.86, SemiBiased: 0.10, Patterned: 0.01} // famously biased
	p.CallProb = 0.24
	p.LoopProb = 0.10
	p.TripCount = [2]int{4, 12}
	p.WorkWords = 1 << 16
	out = append(out, p)

	p = base("gnuchess", 109)
	p.PaperInsts = "119M"
	p.Funcs = 36
	p.StepsPerFunc = [2]int{7, 13}
	p.FillerSize = [2]int{1, 4}
	p.Mix = BranchMix{Biased: 0.60, SemiBiased: 0.28, Patterned: 0.03}
	p.RandomProb = [2]float64{0.45, 0.72}
	p.LoopProb = 0.25
	p.TripCount = [2]int{6, 32}
	p.CallProb = 0.15
	out = append(out, p)

	p = base("ghostscript", 110)
	p.PaperInsts = "180M"
	p.Funcs = 90
	p.StepsPerFunc = [2]int{7, 13}
	p.FillerSize = [2]int{1, 5}
	p.Mix = BranchMix{Biased: 0.66, SemiBiased: 0.26, Patterned: 0.03}
	p.CallProb = 0.18
	p.SwitchProb = 0.04
	p.LoopProb = 0.22
	out = append(out, p)

	p = base("pgp", 111)
	p.PaperInsts = "322M"
	p.Funcs = 20
	p.StepsPerFunc = [2]int{5, 10}
	p.FillerSize = [2]int{4, 10} // crypto kernels: long blocks
	p.Mix = BranchMix{Biased: 0.70, SemiBiased: 0.22, Patterned: 0.03}
	p.LoopProb = 0.42
	p.TripCount = [2]int{16, 80}
	p.CallProb = 0.06
	out = append(out, p)

	p = base("python", 112)
	p.PaperInsts = "220M"
	p.Funcs = 72
	p.StepsPerFunc = [2]int{5, 10}
	p.FillerSize = [2]int{0, 2}
	p.Mix = BranchMix{Biased: 0.68, SemiBiased: 0.25, Patterned: 0.02}
	p.CallProb = 0.24
	p.SwitchProb = 0.08 // bytecode dispatch
	p.SwitchWays = 8
	p.LoopProb = 0.14
	out = append(out, p)

	p = base("gnuplot", 113)
	p.PaperInsts = "284M"
	p.Funcs = 26
	p.StepsPerFunc = [2]int{6, 11}
	p.FillerSize = [2]int{1, 5}
	// gnuplot is the paper's example of premature promotion: branches stay
	// biased for long stretches, then flip. Long pattern periods make a
	// branch cross the promotion threshold and then fault.
	p.Mix = BranchMix{Biased: 0.48, SemiBiased: 0.14, Patterned: 0.32}
	p.PatternPeriods = []int{64, 128, 256}
	p.LoopProb = 0.30
	p.TripCount = [2]int{8, 48}
	out = append(out, p)

	p = base("sim-outorder", 114)
	p.PaperInsts = "100M"
	p.Funcs = 34
	p.StepsPerFunc = [2]int{7, 13}
	p.FillerSize = [2]int{1, 4}
	p.Mix = BranchMix{Biased: 0.64, SemiBiased: 0.27, Patterned: 0.04}
	p.LoopProb = 0.28
	p.TripCount = [2]int{6, 24}
	p.CallProb = 0.14
	p.SwitchProb = 0.04
	out = append(out, p)

	p = base("tex", 115)
	p.PaperInsts = "164M"
	// tex shows the worst packing redundancy in Table 4: a large number of
	// distinct paths through mid-bias branches, so packed segments rarely
	// recur at the same start.
	p.Funcs = 100
	p.StepsPerFunc = [2]int{8, 15}
	p.FillerSize = [2]int{0, 2}
	p.Mix = BranchMix{Biased: 0.58, SemiBiased: 0.30, Patterned: 0.04}
	p.RandomProb = [2]float64{0.5, 0.7}
	p.LoopProb = 0.12
	p.TripCount = [2]int{6, 16}
	p.CallProb = 0.16
	out = append(out, p)

	return out
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in paper order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// ShortName returns the abbreviated benchmark label used on the paper's
// graph axes.
func ShortName(name string) string {
	switch name {
	case "compress":
		return "comp"
	case "m88ksim":
		return "m88k"
	case "vortex":
		return "vor"
	case "gnuchess":
		return "ch"
	case "ghostscript":
		return "gs"
	case "gnuplot":
		return "plot"
	case "python":
		return "py"
	case "sim-outorder":
		return "ss"
	}
	return name
}
