package workload

import (
	"strings"
	"testing"

	"tracecache/internal/exec"
	"tracecache/internal/isa"
)

func TestProfilesAreValidAndDistinct(t *testing.T) {
	ps := Profiles()
	if len(ps) != 15 {
		t.Fatalf("profiles = %d, want 15 (Table 1)", len(ps))
	}
	seen := map[string]bool{}
	seeds := map[int64]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		if seeds[p.Seed] {
			t.Errorf("duplicate seed %d", p.Seed)
		}
		seen[p.Name] = true
		seeds[p.Seed] = true
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("gcc")
	if !ok || p.Name != "gcc" {
		t.Fatal("gcc profile missing")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("unknown profile found")
	}
	if len(Names()) != 15 {
		t.Errorf("Names() = %d", len(Names()))
	}
}

func TestShortNames(t *testing.T) {
	cases := map[string]string{
		"compress": "comp", "gcc": "gcc", "m88ksim": "m88k",
		"gnuplot": "plot", "sim-outorder": "ss", "ghostscript": "gs",
	}
	for in, want := range cases {
		if got := ShortName(in); got != want {
			t.Errorf("ShortName(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ByName("gcc")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Funcs = 0 },
		func(p *Profile) { p.StreamWords = 1000 },
		func(p *Profile) { p.WorkWords = 0 },
		func(p *Profile) { p.SwitchWays = 3 },
		func(p *Profile) { p.Mix = BranchMix{Biased: 0.8, Patterned: 0.5} },
		func(p *Profile) { p.StepsPerFunc = [2]int{5, 2} },
		func(p *Profile) { p.FillerSize = [2]int{-1, 3} },
		func(p *Profile) { p.TripCount = [2]int{0, 0} },
		func(p *Profile) { p.PatternPeriods = nil },
		func(p *Profile) { p.PatternPeriods = []int{3} },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("compress")
	a := p.MustGenerate()
	b := p.MustGenerate()
	if len(a.Code) != len(b.Code) {
		t.Fatalf("non-deterministic code size: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestGenerateAllProfilesExecute(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := p.Generate()
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			// Execute a window and verify the stream contains the
			// ingredients the simulator needs.
			var branches, taken, calls, rets, indirects uint64
			depthMax := 0
			s := exec.NewState(prog)
			pc := prog.Entry
			const budget = 200000
			for i := 0; i < budget; i++ {
				info := s.StepAt(pc)
				if info.OffImage {
					t.Fatalf("execution left the code image at pc %d", info.PC)
				}
				if info.Halted {
					t.Fatalf("program halted after %d instructions", i)
				}
				in := info.Inst
				switch {
				case in.IsCondBranch():
					branches++
					if info.Taken {
						taken++
					}
				case in.Op == isa.OpCall:
					calls++
				case in.Op == isa.OpRet:
					rets++
				case in.IsIndirect():
					indirects++
				}
				if d := s.CallDepth(); d > depthMax {
					depthMax = d
				}
				pc = info.NextPC
			}
			if branches == 0 {
				t.Error("no conditional branches executed")
			}
			frac := float64(branches) / budget
			if frac < 0.03 || frac > 0.40 {
				t.Errorf("branch fraction = %.3f, out of plausible range", frac)
			}
			tf := float64(taken) / float64(branches)
			if tf < 0.05 || tf > 0.95 {
				t.Errorf("taken fraction = %.3f, suspicious", tf)
			}
			if calls == 0 || rets == 0 {
				t.Error("no call/return activity")
			}
			if depthMax > 200 {
				t.Errorf("call depth reached %d; call DAG is wrong", depthMax)
			}
		})
	}
}

func TestGeneratedBranchBiasMatchesClassMix(t *testing.T) {
	// For a strongly biased profile, a majority of branch sites should be
	// overwhelmingly one-directional.
	p, _ := ByName("vortex")
	prog := p.MustGenerate()
	takenBy := map[int][2]uint64{} // pc -> [not-taken, taken]
	exec.Trace(prog, 400000, func(si exec.StepInfo) bool {
		if si.Inst.IsCondBranch() {
			c := takenBy[si.PC]
			if si.Taken {
				c[1]++
			} else {
				c[0]++
			}
			takenBy[si.PC] = c
		}
		return true
	})
	var sites, biasedSites int
	var dyn, biasedDyn uint64
	for _, c := range takenBy {
		total := c[0] + c[1]
		if total < 20 {
			continue
		}
		sites++
		dyn += total
		hi := c[0]
		if c[1] > hi {
			hi = c[1]
		}
		if float64(hi)/float64(total) >= 0.95 {
			biasedSites++
			biasedDyn += total
		}
	}
	if sites == 0 {
		t.Fatal("no warm branch sites")
	}
	if f := float64(biasedDyn) / float64(dyn); f < 0.5 {
		t.Errorf("dynamically biased fraction = %.2f, want >= 0.5 (paper: over 50%%)", f)
	}
}

func TestGeneratedCodeSizesDiffer(t *testing.T) {
	gcc, _ := ByName("gcc")
	comp, _ := ByName("compress")
	ng := len(gcc.MustGenerate().Code)
	nc := len(comp.MustGenerate().Code)
	if ng < 3*nc {
		t.Errorf("gcc code (%d) should dwarf compress code (%d)", ng, nc)
	}
	if nc < 200 {
		t.Errorf("compress code suspiciously small: %d", nc)
	}
}

// TestCodeScaleZeroIsByteIdentical pins the growth knob's compatibility
// contract: CodeScale 0 and 1 generate exactly the program an unscaled
// build produces, instruction for instruction and data word for data word.
func TestCodeScaleZeroIsByteIdentical(t *testing.T) {
	for _, name := range []string{"gcc", "compress", "gnuplot"} {
		p, _ := ByName(name)
		ref := p.MustGenerate()
		for _, scale := range []int{0, 1} {
			q := p
			q.CodeScale = scale
			got := q.MustGenerate()
			if len(got.Code) != len(ref.Code) {
				t.Fatalf("%s scale %d: code size %d != %d", name, scale, len(got.Code), len(ref.Code))
			}
			for i := range ref.Code {
				if got.Code[i] != ref.Code[i] {
					t.Fatalf("%s scale %d: instruction %d differs", name, scale, i)
				}
			}
			if len(got.Data) != len(ref.Data) {
				t.Fatalf("%s scale %d: data size %d != %d", name, scale, len(got.Data), len(ref.Data))
			}
			for addr, v := range ref.Data {
				if got.Data[addr] != v {
					t.Fatalf("%s scale %d: data word %#x differs", name, scale, addr)
				}
			}
		}
	}
}

// TestCodeScaleGrowsFootprintAndExecutes verifies the paper-scale knob:
// the static image grows roughly with the scale, pool 0 is an exact
// prefix of the unscaled code, and the scaled program executes through
// several pool rotations without leaving the image.
func TestCodeScaleGrowsFootprintAndExecutes(t *testing.T) {
	p, _ := ByName("gcc")
	ref := p.MustGenerate()
	sp := p.Scaled(4)
	if sp.Name != "gccx4" || sp.CodeScale != 4 {
		t.Fatalf("Scaled: name %q scale %d", sp.Name, sp.CodeScale)
	}
	prog := sp.MustGenerate()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) < 3*len(ref.Code) {
		t.Fatalf("scaled code %d, want >= 3x unscaled %d", len(prog.Code), len(ref.Code))
	}
	// Pool 0 is emitted first with the same random draws, so the unscaled
	// function bodies are a literal prefix of the scaled image.
	for i, in := range ref.Code[:len(ref.Code)/2] {
		if prog.Code[i] != in {
			t.Fatalf("pool 0 diverges from unscaled code at instruction %d", i)
		}
	}
	// Execute long enough to cross all four pools (one per outer trip) and
	// verify the stream actually visits code beyond the unscaled footprint.
	visitedHigh := false
	s := exec.NewState(prog)
	pc := prog.Entry
	for i := 0; i < 400_000; i++ {
		info := s.StepAt(pc)
		if info.OffImage {
			t.Fatalf("execution left the code image at pc %d", info.PC)
		}
		if info.Halted {
			t.Fatalf("scaled program halted after %d instructions", i)
		}
		if info.PC >= len(ref.Code) {
			visitedHigh = true
		}
		pc = info.NextPC
	}
	if !visitedHigh {
		t.Error("scaled run never left the pool-0 footprint; phase dispatch is broken")
	}
}

func TestCodeScaleValidation(t *testing.T) {
	p, _ := ByName("gcc")
	for _, bad := range []int{-1, 3, 6, 128} {
		q := p
		q.CodeScale = bad
		if err := q.Validate(); err == nil {
			t.Errorf("CodeScale %d accepted", bad)
		}
	}
	for _, good := range []int{0, 1, 2, 16, 64} {
		q := p
		q.CodeScale = good
		if err := q.Validate(); err != nil {
			t.Errorf("CodeScale %d rejected: %v", good, err)
		}
	}
	if got := p.Scaled(1); got.Name != "gcc" || got.CodeScale != 0 {
		t.Errorf("Scaled(1) changed the profile: %q scale %d", got.Name, got.CodeScale)
	}
}

func TestSwitchTablesResolve(t *testing.T) {
	p, _ := ByName("python") // switch-heavy
	prog := p.MustGenerate()
	// Every indirect jump executed must land inside the image (exercised
	// via execution in TestGenerateAllProfilesExecute); here we verify the
	// static tables point into the image.
	n := 0
	for addr, v := range prog.Data {
		if addr >= tableBase {
			n++
			if v < 0 || v >= int64(len(prog.Code)) {
				t.Fatalf("jump table entry at %#x = %d out of range", addr, v)
			}
		}
	}
	if n == 0 {
		t.Fatal("python profile generated no jump tables")
	}
}

func TestMeanDynamicBlockSize(t *testing.T) {
	// The paper's machine sees ~2 fetch blocks per 10.7-instruction trace
	// fetch; dynamic blocks should average roughly 4-9 instructions.
	for _, name := range []string{"gcc", "compress", "ijpeg"} {
		p, _ := ByName(name)
		prog := p.MustGenerate()
		var insts, blocks uint64
		run := uint64(0)
		exec.Trace(prog, 300000, func(si exec.StepInfo) bool {
			insts++
			run++
			if si.Inst.IsControl() {
				blocks++
				run = 0
			}
			return true
		})
		mean := float64(insts) / float64(blocks)
		if mean < 2.5 || mean > 14 {
			t.Errorf("%s: mean dynamic block size = %.2f, implausible", name, mean)
		}
	}
}

func TestAnalyzeChaosLikeProgram(t *testing.T) {
	p, _ := ByName("compress")
	prog := p.MustGenerate()
	a := Analyze(prog, 200_000)
	if a.Insts != 200_000 {
		t.Errorf("insts = %d", a.Insts)
	}
	if a.CondBranches == 0 || a.Blocks == 0 || a.Calls == 0 || a.Returns == 0 {
		t.Errorf("analysis missing activity: %+v", a)
	}
	if m := a.MeanBlockSize(); m < 2.5 || m > 14 {
		t.Errorf("mean block = %.2f", m)
	}
	if a.BranchFraction() <= 0 || a.BranchFraction() > 0.5 {
		t.Errorf("branch fraction = %.3f", a.BranchFraction())
	}
	if a.TakenFraction() <= 0.05 || a.TakenFraction() >= 0.95 {
		t.Errorf("taken fraction = %.3f", a.TakenFraction())
	}
	if a.Sites == 0 || a.BiasedSites == 0 || a.BiasedDynShare <= 0 {
		t.Errorf("site stats = %+v", a)
	}
	if a.MaxCallDepth < 1 || a.MaxCallDepth > 200 {
		t.Errorf("depth = %d", a.MaxCallDepth)
	}
	// Histogram sums to block count.
	var sum uint64
	for _, c := range a.BlockSizeHist {
		sum += c
	}
	if sum != a.Blocks {
		t.Errorf("hist sum %d != blocks %d", sum, a.Blocks)
	}
	// The report mentions the headline stats.
	s := a.String()
	for _, want := range []string{"blocks", "biased", "calls"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeZeroSafe(t *testing.T) {
	var a Analysis
	if a.MeanBlockSize() != 0 || a.BranchFraction() != 0 || a.TakenFraction() != 0 {
		t.Error("zero analysis not safe")
	}
}

func TestSuiteSummary(t *testing.T) {
	rows := SuiteSummary(30_000)
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0], "compress") || !strings.Contains(rows[14], "tex") {
		t.Errorf("order wrong: %v", rows)
	}
}

// TestSuiteRemainsStronglyBiased verifies the paper's premise holds across
// the whole suite: on average, well over half the dynamic conditional
// branches come from strongly biased sites.
func TestSuiteRemainsStronglyBiased(t *testing.T) {
	var sum float64
	for _, prof := range Profiles() {
		a := Analyze(prof.MustGenerate(), 150_000)
		sum += a.BiasedDynShare
	}
	if avg := sum / 15; avg < 0.5 {
		t.Errorf("suite biased dynamic share = %.2f, want >= 0.5", avg)
	}
}
