#!/bin/sh
# Regenerates BENCH_perf.json, the committed performance trajectory for the
# simulator. Run on an idle machine:
#
#	scripts/bench.sh            # ~1 min
#	BENCHTIME=5x scripts/bench.sh
#
# The pre_pr_baseline block is the frozen measurement taken immediately
# before the perf PR (sequential runner, pre-diet allocator behaviour) and
# is preserved verbatim so every later regeneration still shows the
# trajectory against the same origin.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run xxx -bench 'SimulatorThroughput|Suite|WarmupSweep|FastForwardAccuracy' \
	-benchtime "$BENCHTIME" -benchmem . | tee "$TMP"

# pick BENCH UNIT: prints the value whose following field is UNIT on the
# line of benchmark BENCH.
pick() {
	awk -v bench="$1" -v unit="$2" '
		$1 ~ "^Benchmark" bench {
			for (i = 2; i < NF; i++) if ($(i + 1) == unit) { print $i; exit }
		}' "$TMP"
}

INSTS_S="$(pick SimulatorThroughput 'insts/s')"
BYTES_OP="$(pick SimulatorThroughput 'B/op')"
ALLOCS_OP="$(pick SimulatorThroughput 'allocs/op')"
CHK_INSTS_S="$(pick SimulatorThroughputChecked 'insts/s')"
SEQ_NS="$(pick SuiteSequential 'ns/op')"
PAR_NS="$(pick SuiteParallel 'ns/op')"
DET_NS="$(pick WarmupSweepDetailed 'ns/op')"
CKPT_NS="$(pick WarmupSweepCheckpointed 'ns/op')"
IPC_DELTA="$(pick FastForwardAccuracy 'ipc-delta-%')"
EFF_DELTA="$(pick FastForwardAccuracy 'effrate-delta-%')"
MISP_DELTA="$(pick FastForwardAccuracy 'mispredict-delta-pp')"

if [ -z "$INSTS_S" ] || [ -z "$SEQ_NS" ] || [ -z "$PAR_NS" ] ||
	[ -z "$DET_NS" ] || [ -z "$CKPT_NS" ] || [ -z "$IPC_DELTA" ] ||
	[ -z "$CHK_INSTS_S" ]; then
	echo "bench.sh: failed to parse benchmark output" >&2
	exit 1
fi

SPEEDUP="$(awk -v s="$SEQ_NS" -v p="$PAR_NS" 'BEGIN { printf "%.2f", s / p }')"
CHK_SLOWDOWN="$(awk -v p="$INSTS_S" -v c="$CHK_INSTS_S" 'BEGIN { printf "%.2f", p / c }')"
FF_SPEEDUP="$(awk -v d="$DET_NS" -v c="$CKPT_NS" 'BEGIN { printf "%.2f", d / c }')"
GOVER="$(go env GOVERSION)"
CPUS="$(getconf _NPROCESSORS_ONLN)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

cat > BENCH_perf.json <<EOF
{
  "generated_utc": "$DATE",
  "host": { "cpus": $CPUS, "go": "$GOVER" },
  "benchtime": "$BENCHTIME",
  "simulator_throughput": {
    "benchmark": "BenchmarkSimulatorThroughput",
    "insts_per_sec": $INSTS_S,
    "bytes_per_op": $BYTES_OP,
    "allocs_per_op": $ALLOCS_OP
  },
  "self_check": {
    "benchmark": "BenchmarkSimulatorThroughputChecked",
    "note": "gcc/baseline with the -check self-verification layer on (lockstep reference model + structural invariants + conservation identities); committed numbers are produced with -check off",
    "insts_per_sec_checked": $CHK_INSTS_S,
    "slowdown_x": $CHK_SLOWDOWN
  },
  "suite": {
    "benchmark": "BenchmarkSuiteSequential / BenchmarkSuiteParallel",
    "sequential_ns_per_op": $SEQ_NS,
    "parallel_ns_per_op": $PAR_NS,
    "parallel_speedup": $SPEEDUP
  },
  "fast_forward": {
    "benchmark": "BenchmarkWarmupSweepDetailed / BenchmarkWarmupSweepCheckpointed / BenchmarkFastForwardAccuracy",
    "note": "10-point sweep, 200k-instruction unmeasured prefix per point, sequential (workers=1); accuracy vs all-detailed warmup on gcc/baseline",
    "detailed_sweep_ns_per_op": $DET_NS,
    "checkpointed_sweep_ns_per_op": $CKPT_NS,
    "checkpoint_sweep_speedup": $FF_SPEEDUP,
    "ipc_delta_pct": $IPC_DELTA,
    "eff_fetch_rate_delta_pct": $EFF_DELTA,
    "mispredict_rate_delta_pp": $MISP_DELTA
  },
  "pre_pr_baseline": {
    "note": "measured before the parallel sweep engine + allocation diet (sequential runner, cpus=1)",
    "insts_per_sec": 649169,
    "bytes_per_op": 211958994,
    "allocs_per_op": 1678980,
    "tcbench_exp_all_warmup40k_insts80k_seconds": 50.06
  }
}
EOF
echo "wrote BENCH_perf.json"
