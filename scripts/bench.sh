#!/bin/sh
# Regenerates BENCH_perf.json, the committed performance trajectory for the
# simulator, and the monitoring_disabled block of BENCH_obs.json. Run on an
# idle machine:
#
#	scripts/bench.sh            # ~1 min
#	BENCHTIME=5x scripts/bench.sh
#
# The pre_pr_baseline block (BENCH_perf.json) and the observability
# blocks plus the pre_pr_* fields of monitoring_disabled (BENCH_obs.json)
# are frozen measurements taken immediately before their respective PRs
# and are preserved verbatim so every later regeneration still shows the
# trajectory against the same origins.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run xxx -bench 'SimulatorThroughput|Suite|WarmupSweep|FastForwardAccuracy|FrontEndSweep|ReplayAccuracy|SampledSweep|SampledAccuracy' \
	-benchtime "$BENCHTIME" -benchmem . | tee "$TMP"

# pick BENCH UNIT: prints the value whose following field is UNIT on the
# line of benchmark BENCH.
pick() {
	awk -v bench="$1" -v unit="$2" '
		$1 ~ "^Benchmark" bench {
			for (i = 2; i < NF; i++) if ($(i + 1) == unit) { print $i; exit }
		}' "$TMP"
}

INSTS_S="$(pick SimulatorThroughput 'insts/s')"
BYTES_OP="$(pick SimulatorThroughput 'B/op')"
ALLOCS_OP="$(pick SimulatorThroughput 'allocs/op')"
CHK_INSTS_S="$(pick SimulatorThroughputChecked 'insts/s')"
SEQ_NS="$(pick SuiteSequential 'ns/op')"
PAR_NS="$(pick SuiteParallel 'ns/op')"
DET_NS="$(pick WarmupSweepDetailed 'ns/op')"
CKPT_NS="$(pick WarmupSweepCheckpointed 'ns/op')"
IPC_DELTA="$(pick FastForwardAccuracy 'ipc-delta-%')"
EFF_DELTA="$(pick FastForwardAccuracy 'effrate-delta-%')"
MISP_DELTA="$(pick FastForwardAccuracy 'mispredict-delta-pp')"
FES_DET_NS="$(pick FrontEndSweepDetailed 'ns/op')"
FES_REP_NS="$(pick FrontEndSweepReplay 'ns/op')"
REP_BASE_EFF="$(pick ReplayAccuracy 'baseline-eff-delta-%')"
REP_BASE_MISP="$(pick ReplayAccuracy 'baseline-mispredict-delta-pp')"
REP_BEST_EFF="$(pick ReplayAccuracy 'best-eff-delta-%')"
REP_BEST_MISP="$(pick ReplayAccuracy 'best-mispredict-delta-pp')"
SAM_DET_NS="$(pick SampledSweepDetailed 'ns/op')"
SAM_NS="$(pick SampledSweepSampled 'ns/op')"
SAM_BASE_IPC="$(pick SampledAccuracy 'baseline-ipc-delta-%')"
SAM_BASE_EFF="$(pick SampledAccuracy 'baseline-eff-delta-%')"
SAM_BASE_MISP="$(pick SampledAccuracy 'baseline-mispredict-delta-pp')"
SAM_BASE_CI="$(pick SampledAccuracy 'baseline-ipc-ci-halfwidth')"
SAM_BASE_COV="$(pick SampledAccuracy 'baseline-covered-of-3')"
SAM_BEST_IPC="$(pick SampledAccuracy 'best-ipc-delta-%')"
SAM_BEST_EFF="$(pick SampledAccuracy 'best-eff-delta-%')"
SAM_BEST_MISP="$(pick SampledAccuracy 'best-mispredict-delta-pp')"
SAM_BEST_CI="$(pick SampledAccuracy 'best-ipc-ci-halfwidth')"
SAM_BEST_COV="$(pick SampledAccuracy 'best-covered-of-3')"

if [ -z "$INSTS_S" ] || [ -z "$SEQ_NS" ] || [ -z "$PAR_NS" ] ||
	[ -z "$DET_NS" ] || [ -z "$CKPT_NS" ] || [ -z "$IPC_DELTA" ] ||
	[ -z "$CHK_INSTS_S" ] || [ -z "$FES_DET_NS" ] || [ -z "$FES_REP_NS" ] ||
	[ -z "$REP_BASE_EFF" ] || [ -z "$REP_BEST_EFF" ] ||
	[ -z "$SAM_DET_NS" ] || [ -z "$SAM_NS" ] || [ -z "$SAM_BASE_IPC" ]; then
	echo "bench.sh: failed to parse benchmark output" >&2
	exit 1
fi

SPEEDUP="$(awk -v s="$SEQ_NS" -v p="$PAR_NS" 'BEGIN { printf "%.2f", s / p }')"
SAM_SPEEDUP="$(awk -v d="$SAM_DET_NS" -v s="$SAM_NS" 'BEGIN { printf "%.2f", d / s }')"
REPLAY_SPEEDUP="$(awk -v d="$FES_DET_NS" -v r="$FES_REP_NS" 'BEGIN { printf "%.2f", d / r }')"
CHK_SLOWDOWN="$(awk -v p="$INSTS_S" -v c="$CHK_INSTS_S" 'BEGIN { printf "%.2f", p / c }')"
FF_SPEEDUP="$(awk -v d="$DET_NS" -v c="$CKPT_NS" 'BEGIN { printf "%.2f", d / c }')"
GOVER="$(go env GOVERSION)"
CPUS="$(getconf _NPROCESSORS_ONLN)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

cat > BENCH_perf.json <<EOF
{
  "generated_utc": "$DATE",
  "host": { "cpus": $CPUS, "go": "$GOVER" },
  "benchtime": "$BENCHTIME",
  "simulator_throughput": {
    "benchmark": "BenchmarkSimulatorThroughput",
    "insts_per_sec": $INSTS_S,
    "bytes_per_op": $BYTES_OP,
    "allocs_per_op": $ALLOCS_OP,
    "alternating_check_2026_08_08": {
      "note": "frozen cross-check from the record/replay PR: head vs the tree immediately before it, alternating prebuilt test binaries, 4 rounds of -benchtime 5x each, min-of-rounds (PR-6 methodology). The front-end copy-elimination landed with replay also speeds up the detailed simulator.",
      "pre_pr_ns_per_op_min": 242915894,
      "head_ns_per_op_min": 232101544,
      "pre_pr_allocs_per_op": 104086,
      "head_allocs_per_op": 67633
    }
  },
  "self_check": {
    "benchmark": "BenchmarkSimulatorThroughputChecked",
    "note": "gcc/baseline with the -check self-verification layer on (lockstep reference model + structural invariants + conservation identities); committed numbers are produced with -check off",
    "insts_per_sec_checked": $CHK_INSTS_S,
    "slowdown_x": $CHK_SLOWDOWN
  },
  "suite": {
    "benchmark": "BenchmarkSuiteSequential / BenchmarkSuiteParallel",
    "sequential_ns_per_op": $SEQ_NS,
    "parallel_ns_per_op": $PAR_NS,
    "parallel_speedup": $SPEEDUP
  },
  "fast_forward": {
    "benchmark": "BenchmarkWarmupSweepDetailed / BenchmarkWarmupSweepCheckpointed / BenchmarkFastForwardAccuracy",
    "note": "10-point sweep, 200k-instruction unmeasured prefix per point, sequential (workers=1); accuracy vs all-detailed warmup on gcc/baseline",
    "detailed_sweep_ns_per_op": $DET_NS,
    "checkpointed_sweep_ns_per_op": $CKPT_NS,
    "checkpoint_sweep_speedup": $FF_SPEEDUP,
    "ipc_delta_pct": $IPC_DELTA,
    "eff_fetch_rate_delta_pct": $EFF_DELTA,
    "mispredict_rate_delta_pp": $MISP_DELTA
  },
  "replay": {
    "benchmark": "BenchmarkFrontEndSweepDetailed / BenchmarkFrontEndSweepReplay / BenchmarkReplayAccuracy",
    "note": "10-point front-end sweep (5 configs x gcc,go; 60k warmup + 100k measured per point, workers=1). The replay variant records each benchmark once outside the timer, then resolves every point from the decoded retired stream (front end only, see DESIGN.md). Accuracy deltas are replay-vs-detailed on gcc for the baseline and promo-pack-costreg configs; committed experiment numbers remain fully detailed (replay is opt-in).",
    "detailed_sweep_ns_per_op": $FES_DET_NS,
    "replay_sweep_ns_per_op": $FES_REP_NS,
    "replay_sweep_speedup": $REPLAY_SPEEDUP,
    "baseline_eff_fetch_rate_delta_pct": $REP_BASE_EFF,
    "baseline_mispredict_rate_delta_pp": $REP_BASE_MISP,
    "promo_pack_costreg_eff_fetch_rate_delta_pct": $REP_BEST_EFF,
    "promo_pack_costreg_mispredict_rate_delta_pp": $REP_BEST_MISP
  },
  "sampling": {
    "benchmark": "BenchmarkSampledSweepDetailed / BenchmarkSampledSweepSampled / BenchmarkSampledAccuracy",
    "note": "6-point sweep (baseline,icache,promo-pack-costreg x gcc,go) over a 400k committed-stream extent per point, workers=1; the sampled variant covers the extent with 10 windows of 1k insts + 1k detailed warmup each (SMARTS-style, see DESIGN.md). Accuracy is sampled-vs-detailed on gcc over a fully-detailed-feasible 1M extent (20 windows, 5k warmup); covered_of_3 counts headline metrics (IPC, eff fetch rate, mispredict rate) whose detailed truth falls inside the sampled 95% CI. Committed experiment numbers remain fully detailed (sampling is opt-in).",
    "detailed_sweep_ns_per_op": $SAM_DET_NS,
    "sampled_sweep_ns_per_op": $SAM_NS,
    "sampled_sweep_speedup": $SAM_SPEEDUP,
    "baseline_ipc_delta_pct": $SAM_BASE_IPC,
    "baseline_eff_fetch_rate_delta_pct": $SAM_BASE_EFF,
    "baseline_mispredict_rate_delta_pp": $SAM_BASE_MISP,
    "baseline_ipc_ci_halfwidth": $SAM_BASE_CI,
    "baseline_covered_of_3": $SAM_BASE_COV,
    "promo_pack_costreg_ipc_delta_pct": $SAM_BEST_IPC,
    "promo_pack_costreg_eff_fetch_rate_delta_pct": $SAM_BEST_EFF,
    "promo_pack_costreg_mispredict_rate_delta_pp": $SAM_BEST_MISP,
    "promo_pack_costreg_ipc_ci_halfwidth": $SAM_BEST_CI,
    "promo_pack_costreg_covered_of_3": $SAM_BEST_COV
  },
  "pre_pr_baseline": {
    "note": "measured before the parallel sweep engine + allocation diet (sequential runner, cpus=1)",
    "insts_per_sec": 649169,
    "bytes_per_op": 211958994,
    "allocs_per_op": 1678980,
    "tcbench_exp_all_warmup40k_insts80k_seconds": 50.06
  }
}
EOF
echo "wrote BENCH_perf.json"

# BENCH_obs.json: refresh the monitoring disabled-path head measurement
# against the frozen pre-monitoring-PR baseline. The observability blocks
# (disabled_path, enabled_path) are PR-1-era frozen measurements.
HEAD_NS="$(pick SimulatorThroughput 'ns/op')"
MON_BASE_MIN=236530691
MON_DELTA="$(awk -v h="$HEAD_NS" -v b="$MON_BASE_MIN" 'BEGIN { printf "%.2f", (h / b - 1) * 100 }')"
MON_PASS="$(awk -v d="$MON_DELTA" 'BEGIN { print (d <= 1.0) ? "true" : "false" }')"

cat > BENCH_obs.json <<EOF
{
  "description": "Observability-layer overhead baseline. Disabled-path numbers compare BenchmarkSimulatorThroughput (bench_test.go, gcc/baseline, 200k insts) between the pre-observability seed (f3365ad) and this tree with no observer attached, run as alternating prebuilt binaries, 8 rounds of -benchtime 5x each; min-of-rounds is the noise-robust statistic (an identical-binary control run showed a +/-7% noise floor on this host). Enabled-path numbers are BenchmarkSimulatorObsDisabled / BenchmarkSimulatorObsEnabled (internal/obs, compress/promo-t64, 200k insts) with a full ChromeTrace sink and interval collector attached.",
  "date": "2026-08-05",
  "host": "vm (linux, go1.24.0)",
  "disabled_path": {
    "benchmark": "BenchmarkSimulatorThroughput",
    "seed_ns_per_op_min": 253975476,
    "head_ns_per_op_min": 245762939,
    "seed_ns_per_op_mean": 297541941,
    "head_ns_per_op_mean": 295975848,
    "delta_min_pct": -3.23,
    "delta_mean_pct": -0.53,
    "criterion": "<= 1% slowdown vs seed",
    "pass": true,
    "note": "the records-slice preallocation added alongside the instrumentation more than pays for the widened fetchRec; all emit sites are nil-checked and the profile shows no obs frames with no observer attached"
  },
  "enabled_path": {
    "disabled_ns_per_op_min": 277403661,
    "enabled_ns_per_op_min": 541596109,
    "overhead_x": 1.95,
    "note": "opt-in cost with every sink attached (ChromeTrace retains ~1M events in memory); the bus alone without retention sinks is far cheaper"
  },
  "monitoring_disabled": {
    "date": "$DATE",
    "benchmark": "BenchmarkSimulatorThroughput",
    "note": "fleet-metrics disabled-path overhead (no -http/-journal: Simulator.met nil, Runner hooks nil). Baseline is the tree immediately before the monitoring PR (min of 6 alternating -benchtime 5x rounds); head is this regeneration's single $BENCHTIME round, so expect the +/-7% noise floor.",
    "pre_pr_ns_per_op_min": $MON_BASE_MIN,
    "head_ns_per_op": $HEAD_NS,
    "delta_pct": $MON_DELTA,
    "criterion": "head no slower than the frozen pre-PR baseline min (+1% tolerance, inside the noise floor)",
    "pass": $MON_PASS
  }
}
EOF
echo "wrote BENCH_obs.json"
