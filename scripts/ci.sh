#!/bin/sh
# CI for the tracecache repo: tier-1 build+test, vet+gofmt+tcvet static
# gates, a race pass over the observability layer, the simulator, and the
# parallel sweep engine, a fast-forward smoke+accuracy step, a tcserve
# sweep-service smoke (restart + store-served resubmission), and a
# benchmark smoke step so the perf harness stays runnable.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
UNFORMATTED=$(gofmt -l .)
[ -z "$UNFORMATTED" ] || { echo "FAIL: gofmt needed:"; echo "$UNFORMATTED"; exit 1; }

echo "== tcvet (project static analysis: determinism, hotalloc, nilsafe, nopanic, metrichygiene) =="
go run ./cmd/tcvet ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, sim, metrics, monitor, journal, resultstore, server) =="
go test -race ./internal/obs/... ./internal/sim/... \
	./internal/metrics/... ./internal/monitor/... ./internal/journal/... \
	./internal/resultstore/... ./internal/server/... ./internal/atomicfile/...

echo "== go test -race (sweep engine: worker pool + singleflight + program cache) =="
go test -race -run 'Parallel|Singleflight|RunE|SweepE|RunAll|Shared|FastForward' \
	./internal/experiments/ ./internal/workload/

echo "== fast-forward smoke (checkpoint-shared sweep) =="
go run ./cmd/tcbench -exp fig4 -ffwd 100000 -warmup 20000 -insts 40000 -j 1 >/dev/null

echo "== fast-forward accuracy assert =="
go test -run 'TestFastForwardAccuracy|TestFastForwardDeterminism|TestApplyCheckpoint' \
	./internal/sim/

echo "== self-check smoke (lockstep + invariants on both headline configs) =="
go run ./cmd/tcsim -check -bench gcc -config baseline \
	-warmup 40000 -insts 80000 -json >/dev/null
go run ./cmd/tcsim -check -bench gcc -config promo-pack-costreg \
	-warmup 40000 -insts 80000 -json >/dev/null

echo "== differential fuzz seeds (replay only, no fuzzing) =="
go test -run 'FuzzDifferential' ./internal/check/

echo "== monitoring smoke (live /metrics + /progress during a -j N sweep, stdout purity) =="
go build -o /tmp/tcbench-ci ./cmd/tcbench
rm -f /tmp/tcbench-ci-journal.jsonl
/tmp/tcbench-ci -exp all -warmup 2000 -insts 8000 -j 4 \
	-http 127.0.0.1:0 -journal /tmp/tcbench-ci-journal.jsonl \
	>/tmp/tcbench-ci-monitored.out 2>/tmp/tcbench-ci.err &
MON_PID=$!
# Wait for the server announce, then hit the endpoints while the sweep runs.
ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's|.*monitoring on http://\([^ ]*\).*|\1|p' /tmp/tcbench-ci.err)
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no monitoring announce"; cat /tmp/tcbench-ci.err; exit 1; }
curl -sf "http://$ADDR/metrics" >/tmp/tcbench-ci-metrics.txt
curl -sf "http://$ADDR/progress" >/tmp/tcbench-ci-progress.json
curl -sf "http://$ADDR/debug/pprof/" >/dev/null
wait "$MON_PID"
for series in tracecache_runner_runs_started_total \
	tracecache_runner_memo_hits_total \
	tracecache_sim_instructions_committed_total \
	tracecache_runner_run_wall_seconds_bucket \
	tracecache_obs_events_total; do
	grep -q "$series" /tmp/tcbench-ci-metrics.txt || {
		echo "FAIL: /metrics missing $series"; exit 1; }
done
grep -q '"total"' /tmp/tcbench-ci-progress.json || {
	echo "FAIL: /progress missing fields"; exit 1; }
[ -s /tmp/tcbench-ci-journal.jsonl ] || { echo "FAIL: journal empty"; exit 1; }
/tmp/tcbench-ci -journal-report /tmp/tcbench-ci-journal.jsonl >/dev/null
/tmp/tcbench-ci -exp all -warmup 2000 -insts 8000 -j 1 >/tmp/tcbench-ci-bare.out 2>/dev/null
cmp /tmp/tcbench-ci-monitored.out /tmp/tcbench-ci-bare.out || {
	echo "FAIL: monitored stdout differs from bare run"; exit 1; }

echo "== replay smoke (record -> replay -> verify within fidelity bounds) =="
rm -rf /tmp/tcsim-ci-traces && mkdir -p /tmp/tcsim-ci-traces
go build -o /tmp/tcsim-ci ./cmd/tcsim
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-record /tmp/tcsim-ci-traces >/dev/null
TRACE=$(ls /tmp/tcsim-ci-traces/*.tctrace | head -1)
[ -n "$TRACE" ] || { echo "FAIL: -record produced no trace"; exit 1; }
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-replay "$TRACE" -json >/dev/null
# -replay-verify records in memory, replays, and exits non-zero on any
# fidelity violation (internal/check.CompareReplay, documented tolerances).
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-replay-verify
/tmp/tcsim-ci -bench gcc -config promo-pack-costreg -warmup 20000 -insts 60000 \
	-replay-verify
echo "== replay tests (stream format, fidelity, determinism, runner fast path) =="
go test ./internal/trace/
go test -run 'TestReplay|TestRecord|TestRunnerReplay|TestCompareReplay' \
	./internal/sim/ ./internal/experiments/ ./internal/check/

echo "== sampling smoke (schedule audit + CI-vs-truth fidelity on both headline configs) =="
go run ./cmd/tcsim -bench gcc -config baseline \
	-sample 1000:20000:1000 -insts 200000 -json >/dev/null
go run ./cmd/tcsim -bench gcc -config promo-pack-costreg -check \
	-sample 1000:20000:1000 -insts 100000 -json >/dev/null
# CompareSampled (internal/check) asserts the sampled estimates cover a
# fully detailed run of the same extent within the committed tolerance.
go test -run 'TestRunMatchesDetailedTruth|TestRunAuditAndShape|TestRunDeterminism' \
	./internal/sampling/
go test -run 'TestCompareSampled|TestSamplingAudit' ./internal/check/

echo "== tcserve smoke (sweep service; restart must serve the resubmitted sweep from the store) =="
go build -o /tmp/tcserve-ci ./cmd/tcserve
rm -rf /tmp/tcserve-ci-store /tmp/tcserve-ci-journal.jsonl
SWEEP_SPEC='{"configs":["baseline","packing"],"benchmarks":["compress","gcc","go"],"warmupInsts":2000,"measureInsts":8000}'

# start_tcserve launches a fresh daemon on the shared store and resolves
# its bound address into SRV_ADDR / SRV_PID.
start_tcserve() {
	: >/tmp/tcserve-ci.err
	/tmp/tcserve-ci -http 127.0.0.1:0 -store /tmp/tcserve-ci-store \
		-journal /tmp/tcserve-ci-journal.jsonl -j 4 2>/tmp/tcserve-ci.err &
	SRV_PID=$!
	SRV_ADDR=""
	for _ in $(seq 1 50); do
		SRV_ADDR=$(sed -n 's|.*serving on http://\([^ ]*\).*|\1|p' /tmp/tcserve-ci.err)
		[ -n "$SRV_ADDR" ] && break
		sleep 0.1
	done
	[ -n "$SRV_ADDR" ] || { echo "FAIL: tcserve never announced"; cat /tmp/tcserve-ci.err; exit 1; }
}

# run_sweep submits the 6-point sweep, waits for the job, and saves its
# results payload to $1.
run_sweep() {
	SWEEP_JOB=$(curl -sf -XPOST "http://$SRV_ADDR/api/jobs" -d "$SWEEP_SPEC" |
		sed -n 's|.*"id": "\([^"]*\)".*|\1|p')
	[ -n "$SWEEP_JOB" ] || { echo "FAIL: sweep submission returned no job id"; exit 1; }
	SWEEP_STATE=""
	for _ in $(seq 1 600); do
		SWEEP_STATE=$(curl -sf "http://$SRV_ADDR/api/jobs/$SWEEP_JOB" |
			sed -n 's|.*"state": "\([^"]*\)".*|\1|p')
		[ "$SWEEP_STATE" = done ] && break
		sleep 0.1
	done
	[ "$SWEEP_STATE" = done ] || { echo "FAIL: job $SWEEP_JOB ended as '$SWEEP_STATE'"; exit 1; }
	curl -sf "http://$SRV_ADDR/api/jobs/$SWEEP_JOB/results" >"$1"
}

start_tcserve
run_sweep /tmp/tcserve-ci-results1.json
kill -TERM "$SRV_PID"; wait "$SRV_PID"

# Restarted daemon, same store: the identical sweep must simulate nothing.
start_tcserve
run_sweep /tmp/tcserve-ci-results2.json
curl -sf "http://$SRV_ADDR/metrics" >/tmp/tcserve-ci-metrics.txt
kill -TERM "$SRV_PID"; wait "$SRV_PID"

metric() { awk -v m="$1" '$1 == m {print $2}' /tmp/tcserve-ci-metrics.txt; }
COLD=$(metric tracecache_runner_cold_starts_total)
FORKS=$(metric tracecache_runner_checkpoint_forks_total)
REPLAYS=$(metric tracecache_runner_replays_total)
HITS=$(metric tracecache_store_hits_total)
SERVED=$(metric tracecache_runner_store_served_total)
[ "$COLD$FORKS$REPLAYS" = "000" ] || {
	echo "FAIL: restarted daemon simulated (cold=$COLD forks=$FORKS replays=$REPLAYS)"; exit 1; }
[ "$HITS" = 6 ] && [ "$SERVED" = 6 ] || {
	echo "FAIL: restarted daemon store hits=$HITS served=$SERVED, want 6/6"; exit 1; }
STORE_RECS=$(grep -c '"provenance":"store"' /tmp/tcserve-ci-journal.jsonl)
[ "$STORE_RECS" = 6 ] || {
	echo "FAIL: journal has $STORE_RECS store-provenance records, want 6"; exit 1; }
cmp /tmp/tcserve-ci-results1.json /tmp/tcserve-ci-results2.json || {
	echo "FAIL: store-served results differ from simulated results"; exit 1; }

echo "== benchmark smoke =="
go test -run xxx -bench=SimulatorThroughput -benchtime=1x -benchmem .

echo "CI OK"
