#!/bin/sh
# CI for the tracecache repo: tier-1 build+test, vet, a race pass over the
# observability layer, the simulator, and the parallel sweep engine, and a
# benchmark smoke step so the perf harness stays runnable.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, sim) =="
go test -race ./internal/obs/... ./internal/sim/...

echo "== go test -race (sweep engine: worker pool + singleflight + program cache) =="
go test -race -run 'Parallel|Singleflight|RunE|SweepE|RunAll|Shared' \
	./internal/experiments/ ./internal/workload/

echo "== benchmark smoke =="
go test -run xxx -bench=SimulatorThroughput -benchtime=1x -benchmem .

echo "CI OK"
