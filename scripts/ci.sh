#!/bin/sh
# CI for the tracecache repo: tier-1 build+test, vet, a race pass over the
# observability layer, the simulator, and the parallel sweep engine, a
# fast-forward smoke+accuracy step, and a benchmark smoke step so the perf
# harness stays runnable.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, sim) =="
go test -race ./internal/obs/... ./internal/sim/...

echo "== go test -race (sweep engine: worker pool + singleflight + program cache) =="
go test -race -run 'Parallel|Singleflight|RunE|SweepE|RunAll|Shared|FastForward' \
	./internal/experiments/ ./internal/workload/

echo "== fast-forward smoke (checkpoint-shared sweep) =="
go run ./cmd/tcbench -exp fig4 -ffwd 100000 -warmup 20000 -insts 40000 -j 1 >/dev/null

echo "== fast-forward accuracy assert =="
go test -run 'TestFastForwardAccuracy|TestFastForwardDeterminism|TestApplyCheckpoint' \
	./internal/sim/

echo "== self-check smoke (lockstep + invariants on both headline configs) =="
go run ./cmd/tcsim -check -bench gcc -config baseline \
	-warmup 40000 -insts 80000 -json >/dev/null
go run ./cmd/tcsim -check -bench gcc -config promo-pack-costreg \
	-warmup 40000 -insts 80000 -json >/dev/null

echo "== differential fuzz seeds (replay only, no fuzzing) =="
go test -run 'FuzzDifferential' ./internal/check/

echo "== benchmark smoke =="
go test -run xxx -bench=SimulatorThroughput -benchtime=1x -benchmem .

echo "CI OK"
