#!/bin/sh
# CI for the tracecache repo: tier-1 build+test, vet+gofmt+tcvet static
# gates, a race pass over the observability layer, the simulator, and the
# parallel sweep engine, a fast-forward smoke+accuracy step, and a
# benchmark smoke step so the perf harness stays runnable.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
UNFORMATTED=$(gofmt -l .)
[ -z "$UNFORMATTED" ] || { echo "FAIL: gofmt needed:"; echo "$UNFORMATTED"; exit 1; }

echo "== tcvet (project static analysis: determinism, hotalloc, nilsafe, nopanic, metrichygiene) =="
go run ./cmd/tcvet ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, sim, metrics, monitor, journal) =="
go test -race ./internal/obs/... ./internal/sim/... \
	./internal/metrics/... ./internal/monitor/... ./internal/journal/...

echo "== go test -race (sweep engine: worker pool + singleflight + program cache) =="
go test -race -run 'Parallel|Singleflight|RunE|SweepE|RunAll|Shared|FastForward' \
	./internal/experiments/ ./internal/workload/

echo "== fast-forward smoke (checkpoint-shared sweep) =="
go run ./cmd/tcbench -exp fig4 -ffwd 100000 -warmup 20000 -insts 40000 -j 1 >/dev/null

echo "== fast-forward accuracy assert =="
go test -run 'TestFastForwardAccuracy|TestFastForwardDeterminism|TestApplyCheckpoint' \
	./internal/sim/

echo "== self-check smoke (lockstep + invariants on both headline configs) =="
go run ./cmd/tcsim -check -bench gcc -config baseline \
	-warmup 40000 -insts 80000 -json >/dev/null
go run ./cmd/tcsim -check -bench gcc -config promo-pack-costreg \
	-warmup 40000 -insts 80000 -json >/dev/null

echo "== differential fuzz seeds (replay only, no fuzzing) =="
go test -run 'FuzzDifferential' ./internal/check/

echo "== monitoring smoke (live /metrics + /progress during a -j N sweep, stdout purity) =="
go build -o /tmp/tcbench-ci ./cmd/tcbench
rm -f /tmp/tcbench-ci-journal.jsonl
/tmp/tcbench-ci -exp all -warmup 2000 -insts 8000 -j 4 \
	-http 127.0.0.1:0 -journal /tmp/tcbench-ci-journal.jsonl \
	>/tmp/tcbench-ci-monitored.out 2>/tmp/tcbench-ci.err &
MON_PID=$!
# Wait for the server announce, then hit the endpoints while the sweep runs.
ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's|.*monitoring on http://\([^ ]*\).*|\1|p' /tmp/tcbench-ci.err)
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no monitoring announce"; cat /tmp/tcbench-ci.err; exit 1; }
curl -sf "http://$ADDR/metrics" >/tmp/tcbench-ci-metrics.txt
curl -sf "http://$ADDR/progress" >/tmp/tcbench-ci-progress.json
curl -sf "http://$ADDR/debug/pprof/" >/dev/null
wait "$MON_PID"
for series in tracecache_runner_runs_started_total \
	tracecache_runner_memo_hits_total \
	tracecache_sim_instructions_committed_total \
	tracecache_runner_run_wall_seconds_bucket \
	tracecache_obs_events_total; do
	grep -q "$series" /tmp/tcbench-ci-metrics.txt || {
		echo "FAIL: /metrics missing $series"; exit 1; }
done
grep -q '"total"' /tmp/tcbench-ci-progress.json || {
	echo "FAIL: /progress missing fields"; exit 1; }
[ -s /tmp/tcbench-ci-journal.jsonl ] || { echo "FAIL: journal empty"; exit 1; }
/tmp/tcbench-ci -journal-report /tmp/tcbench-ci-journal.jsonl >/dev/null
/tmp/tcbench-ci -exp all -warmup 2000 -insts 8000 -j 1 >/tmp/tcbench-ci-bare.out 2>/dev/null
cmp /tmp/tcbench-ci-monitored.out /tmp/tcbench-ci-bare.out || {
	echo "FAIL: monitored stdout differs from bare run"; exit 1; }

echo "== replay smoke (record -> replay -> verify within fidelity bounds) =="
rm -rf /tmp/tcsim-ci-traces && mkdir -p /tmp/tcsim-ci-traces
go build -o /tmp/tcsim-ci ./cmd/tcsim
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-record /tmp/tcsim-ci-traces >/dev/null
TRACE=$(ls /tmp/tcsim-ci-traces/*.tctrace | head -1)
[ -n "$TRACE" ] || { echo "FAIL: -record produced no trace"; exit 1; }
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-replay "$TRACE" -json >/dev/null
# -replay-verify records in memory, replays, and exits non-zero on any
# fidelity violation (internal/check.CompareReplay, documented tolerances).
/tmp/tcsim-ci -bench gcc -config baseline -warmup 20000 -insts 60000 \
	-replay-verify
/tmp/tcsim-ci -bench gcc -config promo-pack-costreg -warmup 20000 -insts 60000 \
	-replay-verify
echo "== replay tests (stream format, fidelity, determinism, runner fast path) =="
go test ./internal/trace/
go test -run 'TestReplay|TestRecord|TestRunnerReplay|TestCompareReplay' \
	./internal/sim/ ./internal/experiments/ ./internal/check/

echo "== sampling smoke (schedule audit + CI-vs-truth fidelity on both headline configs) =="
go run ./cmd/tcsim -bench gcc -config baseline \
	-sample 1000:20000:1000 -insts 200000 -json >/dev/null
go run ./cmd/tcsim -bench gcc -config promo-pack-costreg -check \
	-sample 1000:20000:1000 -insts 100000 -json >/dev/null
# CompareSampled (internal/check) asserts the sampled estimates cover a
# fully detailed run of the same extent within the committed tolerance.
go test -run 'TestRunMatchesDetailedTruth|TestRunAuditAndShape|TestRunDeterminism' \
	./internal/sampling/
go test -run 'TestCompareSampled|TestSamplingAudit' ./internal/check/

echo "== benchmark smoke =="
go test -run xxx -bench=SimulatorThroughput -benchtime=1x -benchmem .

echo "CI OK"
