#!/bin/sh
# CI for the tracecache repo: tier-1 build+test, vet, and a race pass
# over the observability layer and the simulator that drives it.
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, sim) =="
go test -race ./internal/obs/... ./internal/sim/...

echo "CI OK"
