// Package tracecache is a cycle-level reproduction of "Improving Trace
// Cache Effectiveness with Branch Promotion and Trace Packing" (Patel,
// Evers, Patt; ISCA 1998).
//
// The library contains a complete execution-driven superscalar simulator —
// a small RISC ISA, an architectural interpreter with checkpoint repair, a
// trace-cache fetch mechanism with a fill unit implementing branch
// promotion and trace packing, multiple-branch predictors, a cache
// hierarchy, and an out-of-order execution core with conservative or
// perfect memory disambiguation — plus synthetic stand-ins for the paper's
// benchmark suite and a harness regenerating every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	prog, _ := tracecache.BenchmarkProgram("gcc")
//	run, _ := tracecache.Simulate(tracecache.BaselineConfig(), prog)
//	fmt.Printf("IPC %.2f, effective fetch rate %.2f\n", run.IPC(), run.EffFetchRate())
//
// The named configurations mirror the paper's machines: BaselineConfig is
// the Section 3 trace cache; PromotionConfig adds Section 4's branch
// promotion; PackingConfig adds Section 5's trace packing; BestConfig
// combines promotion with cost-regulated packing; OracleConfig applies
// Section 6's perfect memory disambiguation.
package tracecache

import (
	"fmt"

	"tracecache/internal/checkpoint"
	"tracecache/internal/config"
	"tracecache/internal/core"
	"tracecache/internal/experiments"
	"tracecache/internal/journal"
	"tracecache/internal/metrics"
	"tracecache/internal/monitor"
	"tracecache/internal/obs"
	"tracecache/internal/program"
	"tracecache/internal/sampling"
	"tracecache/internal/sim"
	"tracecache/internal/stats"
	"tracecache/internal/workload"
)

// Core types of the public API.
type (
	// Config parameterises one simulated machine.
	Config = sim.Config
	// Run holds the statistics of one simulation.
	Run = stats.Run
	// Program is an executable image for the simulated ISA.
	Program = program.Program
	// Profile parameterises a synthetic benchmark generator.
	Profile = workload.Profile
	// BranchMix gives the behavioural composition of a profile's branches.
	BranchMix = workload.BranchMix
	// PackPolicy selects how the fill unit splits blocks across segments.
	PackPolicy = core.PackPolicy
	// Simulator runs one program under one configuration.
	Simulator = sim.Simulator
	// Checkpoint is a snapshot of architectural state after a functional
	// prefix, restorable into any configuration's simulator.
	Checkpoint = checkpoint.Checkpoint
	// Experiment regenerates one table or figure of the paper.
	Experiment = experiments.Experiment
	// Runner executes experiment simulations with memoization.
	Runner = experiments.Runner
	// Replayer drives only the front end (trace cache, fill unit,
	// predictors, L1I) from a recorded retired stream; cycle-domain
	// statistics are undefined under replay.
	Replayer = sim.Replayer
	// SamplingParams is the schedule of the sampled execution mode
	// (Config.Sampling): window, period, per-window warmup, placement seed.
	SamplingParams = sim.SamplingParams
	// SampledRun is the aggregate of one sampled run: per-window samples
	// plus mean/stderr/95% CI estimates of the headline metrics.
	SampledRun = stats.Sampled
)

// Packing policies (Section 5 of the paper).
const (
	// PackAtomic never splits fetch blocks (the baseline).
	PackAtomic = core.PackAtomic
	// PackUnregulated greedily fills every segment slot.
	PackUnregulated = core.PackUnregulated
	// PackChunk2 packs only even numbers of instructions.
	PackChunk2 = core.PackChunk2
	// PackChunk4 packs only multiples of four instructions.
	PackChunk4 = core.PackChunk4
	// PackCostRegulated packs when at least half the segment is empty or
	// it contains a tight loop.
	PackCostRegulated = core.PackCostRegulated
)

// BaselineConfig returns the paper's baseline trace-cache machine.
func BaselineConfig() Config { return config.Baseline() }

// ICacheConfig returns the instruction-cache-only reference machine.
func ICacheConfig() Config { return config.ICache() }

// PromotionConfig returns the baseline plus branch promotion at the given
// consecutive-outcome threshold.
func PromotionConfig(threshold uint32) Config { return config.Promotion(threshold) }

// PackingConfig returns the baseline plus unregulated trace packing.
func PackingConfig() Config { return config.Packing() }

// PromotionPackingConfig combines promotion with the given packing policy.
func PromotionPackingConfig(policy PackPolicy, threshold uint32) Config {
	return config.PromotionPacking(policy, threshold)
}

// BestConfig returns the paper's recommended machine: promotion at
// threshold 64 with cost-regulated packing.
func BestConfig() Config { return config.Best() }

// OracleConfig returns the configuration with perfect memory
// disambiguation (Section 6).
func OracleConfig(c Config) Config { return config.Oracle(c) }

// ConfigByName returns a named configuration ("baseline", "icache",
// "promo-t64", "packing", "promo-pack-costreg", ...).
func ConfigByName(name string) (Config, bool) { return config.ByName(name) }

// ConfigNames lists every named configuration.
func ConfigNames() []string { return config.Names() }

// Benchmarks lists the benchmark names of the paper's Table 1.
func Benchmarks() []string { return workload.Names() }

// BenchmarkProfile returns the named benchmark's generator profile.
func BenchmarkProfile(name string) (Profile, bool) { return workload.ByName(name) }

// BenchmarkProgram generates the synthetic program for a named benchmark.
func BenchmarkProgram(name string) (*Program, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return nil, errUnknownBenchmark(name)
	}
	return p.Generate()
}

// NewSimulator builds a simulator for the program under the configuration.
func NewSimulator(cfg Config, prog *Program) (*Simulator, error) {
	return sim.New(cfg, prog)
}

// NewReplayer builds a front-end-only replay engine for the program under
// the configuration. Attach a recording to a detailed run first
// (Simulator.AttachRecorder, or tcsim -record / Runner.Replay), then feed
// the stream to Replayer.Replay; one recording serves every configuration
// that varies only front-end axes. See DESIGN.md §9 for the fidelity
// contract.
func NewReplayer(cfg Config, prog *Program) (*Replayer, error) {
	return sim.NewReplayer(cfg, prog)
}

// Simulate runs the program to its instruction budget under the
// configuration and returns the statistics.
func Simulate(cfg Config, prog *Program) (*Run, error) {
	s, err := sim.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// SimulateSampled estimates the program's statistics by SMARTS-style
// statistical sampling: cfg.MaxInsts becomes the total committed-stream
// budget, covered by alternating functional fast-forward and short
// detailed windows per cfg.Sampling, and the per-window measurements
// aggregate into means with 95% confidence intervals (see DESIGN.md §10
// for the fidelity contract). The error includes any sampling-audit
// violation, so a successful return is a verified schedule.
func SimulateSampled(cfg Config, prog *Program) (*SampledRun, error) {
	s, err := sim.New(cfg, prog)
	if err != nil {
		return nil, err
	}
	res, err := sampling.Run(s)
	if err != nil {
		return nil, err
	}
	if len(res.Violations) > 0 {
		return nil, errSamplingAudit{n: len(res.Violations), first: res.Violations[0].Detail}
	}
	return res.Sampled, nil
}

type errSamplingAudit struct {
	n     int
	first string
}

func (e errSamplingAudit) Error() string {
	return fmt.Sprintf("tracecache: sampling audit: %d violation(s), first: %s", e.n, e.first)
}

// CaptureCheckpoint executes the program functionally for up to insts
// committed instructions and snapshots the architectural state (registers,
// memory, call stack, branch history). Restore the checkpoint into a fresh
// Simulator with Simulator.ApplyCheckpoint to skip re-executing the prefix;
// because the state is configuration-independent, one checkpoint can seed a
// whole sweep of machines (set Config.FastForwardInsts to insts so budgets
// line up, and keep a detailed warmup to warm microarchitectural state).
func CaptureCheckpoint(prog *Program, insts uint64) *Checkpoint {
	return checkpoint.Capture(prog, insts)
}

// Experiments returns every paper table/figure experiment in order.
func Experiments() []Experiment { return experiments.All() }

// ExtensionExperiments returns the ablation studies beyond the paper's
// figures: static promotion, path associativity, inactive issue, and
// trace-cache size sensitivity.
func ExtensionExperiments() []Experiment { return experiments.Extensions() }

// ExperimentByID returns one experiment ("table2", "fig10", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// ExperimentIDs lists the experiment identifiers in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// NewRunner builds an experiment runner with the given warmup and
// measurement instruction budgets. The runner memoizes simulations and is
// safe for concurrent use; set Runner.Workers to bound parallel
// simulations (default GOMAXPROCS). Set Runner.FastForward to skip a
// functional prefix per run, shared across configurations through one
// architectural checkpoint per benchmark.
func NewRunner(warmup, budget uint64) *Runner { return experiments.NewRunner(warmup, budget) }

// RunExperiments executes the experiments against the runner, fanning the
// underlying simulations across the runner's worker pool, and calls emit
// with each experiment's rendered output in the given order (outputs are
// identical to sequential execution; see the experiments package
// concurrency contract). The first experiment failure, in order, stops
// emission and is returned.
func RunExperiments(r *Runner, exps []Experiment, emit func(Experiment, string)) error {
	return experiments.RunAll(r, exps, emit)
}

// Observability types. An EventBus attached to a Simulator (via
// Simulator.AttachObserver) receives structured events from the fetch
// engine, fill unit and recovery machinery; an IntervalCollector (via
// Simulator.SetIntervalCollector) accumulates windowed time-series
// telemetry. Both are nil-safe: a detached simulator pays only a nil
// check per instrumentation site.
type (
	// EventBus is the structured-event bus of internal/obs.
	EventBus = obs.Bus
	// Event is one structured simulator event.
	Event = obs.Event
	// EventSink consumes events from an EventBus.
	EventSink = obs.Sink
	// IntervalCollector accumulates per-interval telemetry snapshots.
	IntervalCollector = obs.Collector
	// TimeSeries is the windowed telemetry of one run.
	TimeSeries = obs.TimeSeries
	// ChromeTrace is an EventSink rendering a Chrome/Perfetto trace file.
	ChromeTrace = obs.ChromeTrace
	// Meta is the run-provenance metadata attached to results.
	Meta = stats.Meta
)

// NewEventBus builds an event bus with the given ring-buffer capacity
// (non-positive selects the default).
func NewEventBus(ringSize int) *EventBus { return obs.NewBus(ringSize) }

// NewIntervalCollector builds a time-series collector snapshotting every
// everyCycles cycles (zero selects 10000).
func NewIntervalCollector(everyCycles uint64) *IntervalCollector {
	return obs.NewCollector(everyCycles)
}

// NewChromeTrace builds a Chrome/Perfetto trace-event sink retaining at
// most maxEvents events (non-positive selects the default cap).
func NewChromeTrace(maxEvents int) *ChromeTrace { return obs.NewChromeTrace(maxEvents) }

// Fleet-level observability. A MetricsRegistry holds process-wide atomic
// counters, gauges and histograms with Prometheus text exposition;
// InstrumentRunner wires a Runner's lifecycle into one, RunnerMetrics.Sim
// carries the shared simulator counters, and SweepProgress plus
// MonitorServer expose a live sweep over HTTP (/metrics, /progress as
// JSON or SSE, /debug/pprof). A JournalWriter persists one JSONL record
// per simulation request. Everything here is opt-in and out-of-band: a
// runner with nil hooks pays one nil check per site, and enabling
// monitoring changes no simulated statistic and no experiment output.
type (
	// MetricsRegistry registers and exposes process-wide metrics.
	MetricsRegistry = metrics.Registry
	// RunnerMetrics is the counter set a Runner feeds when instrumented.
	RunnerMetrics = experiments.RunnerMetrics
	// RunEvent is one run-lifecycle notification from a Runner.
	RunEvent = experiments.RunEvent
	// SweepProgress aggregates run events into live sweep status.
	SweepProgress = monitor.Progress
	// MonitorServer serves /metrics, /progress, expvar and pprof.
	MonitorServer = monitor.Server
	// JournalWriter appends one JSON line per simulation request.
	JournalWriter = journal.Writer
	// JournalRecord is one journal line.
	JournalRecord = journal.Record
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// InstrumentRunner registers the runner counter set in the registry;
// assign the result to Runner.Metrics before the first Run call.
func InstrumentRunner(r *MetricsRegistry) *RunnerMetrics {
	return experiments.InstrumentRunner(r)
}

// NewSweepProgress builds a live progress tracker; wire its Listener into
// Runner.OnRun. workers sizes the ETA divisor and insts (may be nil)
// reads the fleet committed-instruction counter, typically
// RunnerMetrics.Sim.Insts.Value.
func NewSweepProgress(workers int, insts func() uint64) *SweepProgress {
	return monitor.NewProgress(workers, insts)
}

// OpenJournal opens (creating if needed) a JSONL run journal for
// appending; wire journal listeners via RunnerJournalListener.
func OpenJournal(path string) (*JournalWriter, error) { return journal.OpenFile(path) }

// RunnerJournalListener adapts a journal writer into a Runner.OnRun
// listener appending one record per resolved request. Combine listeners
// with RunListeners.
func RunnerJournalListener(w *JournalWriter, onErr func(error)) func(RunEvent) {
	return journal.RunnerListener(w, onErr)
}

// RunListeners fans one RunEvent to every non-nil listener in order.
func RunListeners(ls ...func(RunEvent)) func(RunEvent) {
	return experiments.MultiListener(ls...)
}

// ReadJournal reads a journal file; truncatedTail reports an unterminated
// final line (the signature of a process killed mid-append), which is
// skipped rather than failing the read.
func ReadJournal(path string) (recs []JournalRecord, truncatedTail bool, err error) {
	return journal.ReadFile(path)
}

// JournalReport renders a human-readable summary of journal records.
func JournalReport(recs []JournalRecord, truncatedTail bool) string {
	return journal.Report(recs, truncatedTail)
}

// JournalDiff renders a point-by-point comparison of two journals.
func JournalDiff(a, b []JournalRecord) string { return journal.Diff(a, b) }

// Analysis summarises a program's dynamic instruction stream (block sizes,
// branch bias, call/indirect mix).
type Analysis = workload.Analysis

// AnalyzeProgram executes the program sequentially for up to limit
// instructions and summarises its dynamic stream.
func AnalyzeProgram(p *Program, limit uint64) Analysis { return workload.Analyze(p, limit) }

type errUnknownBenchmark string

func (e errUnknownBenchmark) Error() string {
	return "tracecache: unknown benchmark " + string(e)
}
