package tracecache_test

import (
	"testing"

	"tracecache"
)

func TestBenchmarkProgram(t *testing.T) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) == 0 {
		t.Fatal("empty program")
	}
	if _, err := tracecache.BenchmarkProgram("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSimulateQuickstart(t *testing.T) {
	prog, err := tracecache.BenchmarkProgram("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tracecache.BaselineConfig()
	cfg.MaxInsts = 50000
	run, err := tracecache.Simulate(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if run.Retired < 50000 || run.IPC() <= 0 || run.EffFetchRate() <= 1 {
		t.Errorf("run = retired %d, IPC %.2f, eff %.2f", run.Retired, run.IPC(), run.EffFetchRate())
	}
}

func TestNamedConfigs(t *testing.T) {
	names := tracecache.ConfigNames()
	if len(names) < 10 {
		t.Fatalf("only %d named configs", len(names))
	}
	for _, want := range []string{"icache", "baseline", "packing", "promo-t64", "promo-pack-costreg", "baseline-oracle"} {
		if _, ok := tracecache.ConfigByName(want); !ok {
			t.Errorf("config %q missing", want)
		}
	}
	if _, ok := tracecache.ConfigByName("bogus"); ok {
		t.Error("bogus config found")
	}
}

func TestConfigConstructors(t *testing.T) {
	if tracecache.BaselineConfig().Name != "baseline" {
		t.Error("baseline name")
	}
	if c := tracecache.PromotionConfig(64); c.Fill.PromoteThreshold != 64 || !c.SplitMBP {
		t.Error("promotion config wrong")
	}
	if c := tracecache.PackingConfig(); c.Fill.Packing != tracecache.PackUnregulated {
		t.Error("packing config wrong")
	}
	if c := tracecache.BestConfig(); c.Fill.Packing != tracecache.PackCostRegulated {
		t.Error("best config wrong")
	}
	if c := tracecache.OracleConfig(tracecache.BaselineConfig()); !c.Engine.MemOracle {
		t.Error("oracle config wrong")
	}
}

func TestBenchmarksAndExperimentLists(t *testing.T) {
	if got := len(tracecache.Benchmarks()); got != 15 {
		t.Errorf("benchmarks = %d, want 15", got)
	}
	if got := len(tracecache.Experiments()); got != 15 {
		t.Errorf("experiments = %d, want 15 (tables 1-4 + figures 4-16)", got)
	}
	if _, ok := tracecache.ExperimentByID("table2"); !ok {
		t.Error("table2 missing")
	}
	if len(tracecache.ExperimentIDs()) != len(tracecache.Experiments()) {
		t.Error("IDs/Experiments mismatch")
	}
}

func TestNewSimulatorExposesStructure(t *testing.T) {
	prog, _ := tracecache.BenchmarkProgram("compress")
	cfg := tracecache.BaselineConfig()
	cfg.MaxInsts = 10000
	s, err := tracecache.NewSimulator(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.TraceCache() == nil || s.FillUnit() == nil {
		t.Error("trace config must expose trace cache and fill unit")
	}
	if s.TraceCache().Stats().Inserts == 0 {
		t.Error("no segments built")
	}
}

func TestBenchmarkProfileAccess(t *testing.T) {
	p, ok := tracecache.BenchmarkProfile("gnuplot")
	if !ok {
		t.Fatal("gnuplot missing")
	}
	if p.Mix.Patterned < 0.2 {
		t.Error("gnuplot should be pattern-heavy (premature-promotion study)")
	}
}

func TestCustomProfile(t *testing.T) {
	p, _ := tracecache.BenchmarkProfile("compress")
	p.Name = "custom"
	p.Funcs = 4
	prog, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tracecache.BestConfig()
	cfg.MaxInsts = 20000
	run, err := tracecache.Simulate(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if run.Retired < 20000 {
		t.Errorf("retired = %d", run.Retired)
	}
}
